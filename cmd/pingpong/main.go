// Command pingpong runs the classic latency/bandwidth sweep.
//
// By default it sweeps a simulated fabric, for both the sequential
// baseline and the PIOMan-enabled engine:
//
//	pingpong [-quick] [-max 1048576] [-rails mx,shm]
//
// -rails selects which simulated rails the world gets: "mx,shm" (the
// paper's testbed: Myrinet/MX between nodes plus the intra-node
// shared-memory channel) or "mx" alone.
//
// With -listen, -connect or -shm it instead runs the full engine stack
// between two real OS processes, exercising the eager protocol and the
// RTS/CTS rendezvous protocol on a genuine transport. These flags replace
// the simulated rail set entirely with real rails, so they cannot be
// combined with -rails.
//
// Over TCP (fabric/tcpfab):
//
//	pingpong -listen 127.0.0.1:9777           # rank 0
//	pingpong -connect 127.0.0.1:9777          # rank 1, other process
//
// Rank 0 accepts with -listen (port 0 picks an ephemeral port, printed on
// startup); rank 1 dials it. The connecting rank speaks first so the
// listening rank learns its return path from the accepted connection.
//
// Over shared memory (fabric/shmfab), for two processes on the same host:
//
//	pingpong -shm /tmp/pp-rings -rank 0       # sweeps
//	pingpong -shm /tmp/pp-rings -rank 1       # echoes, other process
//
// Both ranks name the same directory, which must be fresh for the run
// (stale ring files from an earlier run would be spliced in mid-state);
// either rank may start first — ring files are created by whoever
// arrives first and adopted by the other.
//
// Over UDP datagrams (fabric/udpfab), the one transport whose wire
// genuinely loses and reorders, with the reliability sublayer earning
// delivery back:
//
//	pingpong -udp 127.0.0.1:9877 -rank 0      # binds, sweeps
//	pingpong -udp 127.0.0.1:9877 -rank 1      # echoes, other process
//
// Rank 0 binds the named address (port 0 picks an ephemeral port,
// printed on startup); rank 1 binds an ephemeral port and reaches rank 0
// at the named address. Rank 1 speaks first, so rank 0 learns its return
// path from the first valid datagram.
//
// Combining the TCP flags with -shm bonds BOTH real transports into one
// world — the paper's multirail configuration, MX + shared memory, with
// real fabrics standing in — and runs the sweep three times: data forced
// over the TCP rail alone, over the shm rail alone (these two measure
// each rail's actual bandwidth and reseed the striping weights), then
// striped across both by the multirail strategy. At the rendezvous sizes
// the bonded sweep must beat the best single rail, or the process exits 3:
//
//	pingpong -listen 127.0.0.1:9777 -shm /tmp/pp-rings    # rank 0
//	pingpong -connect 127.0.0.1:9777 -shm /tmp/pp-rings   # rank 1
//
// With -json it runs the in-process four-backend benchmark —
// raw-endpoint eager round trips over the wire simulator, loopback TCP,
// shared-memory rings and reliable UDP datagrams, then the back-to-back
// 64-byte message-rate storm per backend, then WAN-conditioned UDP
// round trips with seeded loss and latency injected beneath the
// reliability sublayer — and writes BENCH_pingpong.json rows (RTT
// p50/p99 and allocs/op per size; msgs/sec and batch occupancy for the
// storm, including a per-frame-drain shm control row), the file CI
// tracks per build:
//
//	pingpong -json BENCH_pingpong.json
//
// In bonded mode, -json instead merges the bonded rows (backends "tcp",
// "shm" and "multirail" at the rendezvous sizes) into that file on rank 0.
//
// With -metrics the process serves its live telemetry registry over HTTP
// while the sweep runs — Prometheus text at /metrics, the full snapshot
// as JSON at /metrics.json (what cmd/nmtop polls):
//
//	pingpong -metrics 127.0.0.1:9377          # curl either endpoint mid-run
//
// In the default simulated sweep the multithreaded engine's world is the
// metered one (metric names are keyed by node rank, so one world owns
// the registry at a time); real and bonded runs meter their single
// world. -linger keeps the endpoint up for that long after the sweep
// finishes, so scripted scrapes (CI's bench smoke) never race the exit.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pioman/internal/core"
	"pioman/internal/exp"
	"pioman/internal/fabric"
	"pioman/internal/fabric/bufpool"
	"pioman/internal/fabric/shmfab"
	"pioman/internal/fabric/tcpfab"
	"pioman/internal/fabric/udpfab"
	"pioman/internal/mpi"
	"pioman/internal/nic"
	"pioman/internal/telemetry"
	"pioman/internal/topo"
)

func main() {
	quick := flag.Bool("quick", false, "reduced iteration counts")
	max := flag.Int("max", 1<<20, "largest message size")
	rails := flag.String("rails", "mx,shm", "simulated rails for the default sweep: \"mx\" or \"mx,shm\"; incompatible with -listen/-connect/-shm, which replace the simulated rails with one real transport")
	listen := flag.String("listen", "", "run as rank 0 over real TCP, accepting on this address (replaces the simulated -rails set; with -shm too, bonds both transports into one multirail world)")
	connect := flag.String("connect", "", "run as rank 1 over real TCP, dialing rank 0 at this address (replaces the simulated -rails set; with -shm too, bonds both transports into one multirail world)")
	shmDir := flag.String("shm", "", "run over real shared memory, ring files in this fresh directory (replaces the simulated -rails set; alone it needs -rank; with -listen/-connect it bonds shm with TCP)")
	udpAddr := flag.String("udp", "", "run over real UDP datagrams with the reliability sublayer (fabric/udpfab): rank 0 binds this address, rank 1 reaches rank 0 at it; needs -rank (replaces the simulated -rails set)")
	rank := flag.Int("rank", 0, "with -shm or -udp: this process's rank (0 sweeps, 1 echoes)")
	jsonPath := flag.String("json", "", "alone: write the four-backend (sim, tcp loopback, shm, udp) RTT/allocation rows plus the UDP WAN rows to this file and exit; in bonded mode: merge the bonded tcp/shm/multirail rows into this file (rank 0)")
	nrank := flag.Bool("nrank", false, "run as one rank of an N-process cluster launched through cmd/nmrun (reads the PIOMAN_* environment contract): pairwise neighbor pingpong over real TCP, survivor-set totals via allreduce; with -json (rank 0) merges a pingpong_nrank row into the file")
	nrankDur := flag.Duration("nrank-duration", 3*time.Second, "with -nrank: how long the initiator of each pair keeps the exchange running (halved by -quick)")
	metricsAddr := flag.String("metrics", "", "serve live telemetry over HTTP on this address while the sweep runs: Prometheus text at /metrics, JSON at /metrics.json (port 0 picks one, printed on startup)")
	linger := flag.Duration("linger", 0, "with -metrics: keep the endpoint up this long after the sweep, so scripted scrapes never race the exit")
	flag.Parse()
	exp.Quick = *quick

	real := *listen != "" || *connect != "" || *shmDir != "" || *udpAddr != ""
	bonded := *shmDir != "" && (*listen != "" || *connect != "")
	if *udpAddr != "" && (*listen != "" || *connect != "" || *shmDir != "") {
		fail("-udp runs a two-process UDP world on its own; it cannot be combined with -listen/-connect/-shm")
	}
	rankSet, railsSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "rank":
			rankSet = true
		case "rails":
			railsSet = true
		}
	})
	if *nrank && (real || railsSet || rankSet) {
		fail("-nrank takes its transport and rank from the nmrun environment contract; it cannot be combined with -listen/-connect/-shm/-udp/-rank/-rails")
	}
	if *jsonPath != "" && !bonded && !*nrank {
		if real || rankSet || railsSet {
			fail("-json runs its own in-process benchmark; outside bonded mode (-listen/-connect together with -shm) it cannot be combined with -listen/-connect/-shm/-udp/-rank/-rails")
		}
		if *metricsAddr != "" {
			fail("-json benchmarks raw endpoints with its own metered/unmetered rows; it has no engine world for -metrics to expose")
		}
		os.Exit(runBenchJSON(*jsonPath, *quick))
	}
	if *linger != 0 && *metricsAddr == "" {
		fail("-linger keeps the -metrics endpoint alive; it does nothing without -metrics")
	}

	// The telemetry endpoint, when asked for: every run mode below feeds
	// this registry (the default sweep meters the multithreaded world;
	// real and bonded runs meter their single world). finish replaces
	// os.Exit so the endpoint can linger past the sweep for scripted
	// scrapes before the process goes away.
	var metrics *telemetry.Registry
	if *metricsAddr != "" {
		metrics = telemetry.NewRegistry()
		// Process-wide metrics exist from the first scrape; node-keyed
		// ones appear when the metered world starts (the default sweep's
		// unmetered sequential baseline runs first).
		bufpool.RegisterMetrics(metrics)
		addr, _, err := telemetry.Serve(metrics, *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pingpong: metrics endpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("pingpong: serving telemetry on http://%s/metrics (JSON at /metrics.json)\n", addr)
	}
	finish := func(code int) {
		if metrics != nil && *linger > 0 {
			fmt.Printf("pingpong: holding telemetry endpoint for %v\n", *linger)
			time.Sleep(*linger)
		}
		os.Exit(code)
	}
	if *listen != "" && *connect != "" {
		fail("-listen and -connect are mutually exclusive: one process accepts, the other dials")
	}
	if real && railsSet {
		fail("-rails configures the simulated sweep; -listen/-connect/-shm replace the simulated rails with real transports, so the flags cannot be combined")
	}
	if rankSet && ((*shmDir == "" && *udpAddr == "") || bonded) {
		fail("-rank only selects a role under -shm alone or -udp (TCP and bonded runs infer the rank: -listen is 0, -connect is 1)")
	}
	if (*shmDir != "" || *udpAddr != "") && (*rank < 0 || *rank > 1) {
		fail(fmt.Sprintf("-rank %d: the two-process pingpong has ranks 0 and 1", *rank))
	}
	withSHM := true
	switch *rails {
	case "mx,shm":
	case "mx":
		withSHM = false
	default:
		fail(fmt.Sprintf("-rails %q: supported rail sets are \"mx\" and \"mx,shm\"", *rails))
	}

	if *nrank {
		finish(runNrank(*nrankDur, *quick, *jsonPath, metrics))
	}
	if bonded {
		finish(runBonded(*listen, *connect, *shmDir, *quick, *jsonPath, metrics))
	}
	if real {
		finish(runReal(*listen, *connect, *shmDir, *udpAddr, *rank, *quick, metrics))
	}

	var sizes []int
	for s := 8; s <= *max; s *= 2 {
		sizes = append(sizes, s)
	}
	fmt.Println(exp.FormatPingpong(exp.RunPingpongRails(core.Sequential, sizes, withSHM),
		"Pingpong, sequential baseline (original NewMadeleine)"))
	// Meter the PIOMan-enabled sweep: names are rank-keyed, so only one
	// world registers per process lifetime (the registry rejects
	// duplicates by design — silent double-counting would be worse).
	exp.Metrics = metrics
	fmt.Println(exp.FormatPingpong(exp.RunPingpongRails(core.Multithreaded, sizes, withSHM),
		"Pingpong, multithreaded engine (NewMadeleine + PIOMan)"))
	finish(0)
}

// fail prints a usage error and exits with the flag-error convention.
func fail(msg string) {
	fmt.Fprintf(os.Stderr, "pingpong: %s\n", msg)
	os.Exit(2)
}

// Real-mode protocol tags.
const (
	tagHello = 1 // rank 1 -> rank 0: opens the return path
	tagPing  = 2
	tagPong  = 3
	tagBye   = 4
)

// realSizes spans both protocols around the 32 KiB rendezvous threshold.
var realSizes = []int{64, 1 << 10, 4 << 10, 32 << 10, 64 << 10, 256 << 10}

// runReal executes one rank of the two-process pingpong over a real
// transport — TCP when listen/connect is set, shared-memory rings when
// shmDir is, reliable UDP datagrams when udpAddr is — and returns the
// process exit code. metrics, when non-nil, receives the world's
// engine/rail registrations (-metrics).
func runReal(listen, connect, shmDir, udpAddr string, cfgRank int, quick bool, metrics *telemetry.Registry) int {
	iters := 50
	if quick {
		iters = 5
	}
	// The engine dedicates goroutines to busy-polling (that is the
	// paper's design); with GOMAXPROCS at or below the spinner count a
	// woken socket reader waits out the runtime's ~10ms preemption tick
	// before it can deliver. Keep enough Ps that woken goroutines
	// schedule immediately even on small hosts.
	if runtime.GOMAXPROCS(0) < 6 {
		runtime.GOMAXPROCS(6)
	}

	var (
		ep   fabric.Endpoint
		rail nic.Params
		rank int
		err  error
	)
	switch {
	case udpAddr != "":
		rank = cfgRank
		rail = nic.UdpParams()
		var uep *udpfab.Endpoint
		if rank == 0 {
			uep, err = udpfab.New(udpfab.Config{Self: 0, Nodes: 2, Listen: udpAddr})
			if err == nil {
				// Rank 1 speaks first; the return path is learned from
				// its first valid datagram.
				fmt.Printf("pingpong: rank 0 listening on %s\n", uep.Addr())
			}
		} else {
			uep, err = udpfab.New(udpfab.Config{Self: 1, Nodes: 2, Peers: map[int]string{0: udpAddr}})
		}
		ep = uep
	case shmDir != "":
		rank = cfgRank
		rail = nic.ShmParams()
		ep, err = shmfab.New(shmfab.Config{
			Self: rank, Nodes: 2, Dir: shmDir,
			// Matches the engine's NoIdlePolling below: on a host
			// without spare cores, spinning on a ring starves the peer.
			NoBusyPoll: true,
		})
		if err == nil {
			fmt.Printf("pingpong: rank %d on shared-memory rings in %s\n", rank, shmDir)
		}
	case listen != "":
		rail = nic.RealParams()
		var tep *tcpfab.Endpoint
		tep, err = tcpfab.New(tcpfab.Config{Self: 0, Nodes: 2, Listen: listen})
		if err == nil {
			fmt.Printf("pingpong: rank 0 listening on %s\n", tep.Addr())
			ep = tep
		}
	default:
		rank = 1
		rail = nic.RealParams()
		var tep *tcpfab.Endpoint
		tep, err = tcpfab.New(tcpfab.Config{Self: 1, Nodes: 2, Peers: map[int]string{0: connect}})
		if err == nil {
			// Fail fast on a bad address: without this the dial error
			// only surfaces as a silently dropped packet deep in the
			// engine, and the process hangs waiting for a reply.
			err = tep.Dial(0)
			ep = tep
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pingpong: %v\n", err)
		return 1
	}

	w := mpi.NewDistributed(mpi.Config{
		Mode:           core.Multithreaded,
		OffloadEager:   true,
		EnableBlocking: true,
		// Real transports progress through the §3.2 blocking fallback:
		// active polling would only steal CPU from the kernel (TCP) or
		// the peer process (shm) on small hosts.
		NoIdlePolling: true,
		Machine:       topo.Machine{Sockets: 1, CoresPerSocket: 2},
		Metrics:       metrics,
	}, rail, ep)
	defer w.Close()

	if !runSweep(w, rank, iters, rail.EagerMax) {
		return 1
	}
	fmt.Printf("pingpong: rank %d ok\n", rank)
	return 0
}

// maxRealSize is the echo buffer bound of the single-transport sweep.
func maxRealSize() int { return realSizes[len(realSizes)-1] }

// runSweep drives the warm-up plus timed eager/rendezvous exchanges on a
// two-rank distributed world and reports success. Rank 0 sweeps and
// prints; rank 1 echoes until the bye marker.
func runSweep(w *mpi.World, rank, iters, eagerMax int) bool {
	ok := true
	w.Node(rank).Run(func(p *mpi.Proc) {
		if rank == 1 {
			// Speaking first gives rank 0 its return path.
			p.Send(0, tagHello, []byte("hello"))
			echoUntilBye(p, maxRealSize(), nil)
			return
		}
		var b [8]byte
		p.Recv(1, tagHello, b[:5])
		// Rank 1 only exits on the bye marker; send it on every exit
		// path, including failures, so a corrupted run doesn't strand
		// the peer in its echo loop.
		defer p.Send(1, tagBye, []byte("bye"))
		for _, size := range realSizes {
			proto := "eager"
			if size > eagerMax {
				proto = "rendezvous"
			}
			msg := patterned(size)
			buf := make([]byte, size)
			// Warmup exchange, then the timed loop.
			p.Send(1, tagPing, msg)
			p.Recv(1, tagPong, buf)
			start := time.Now()
			for i := 0; i < iters; i++ {
				p.Send(1, tagPing, msg)
				n, _ := p.Recv(1, tagPong, buf)
				if n != size || !bytes.Equal(buf, msg) {
					fmt.Fprintf(os.Stderr, "pingpong: echo of %d bytes corrupted\n", size)
					ok = false
					return
				}
			}
			rtt := time.Since(start) / time.Duration(iters)
			fmt.Printf("pingpong: %-10s %8d B  rtt %10v  %8.1f MB/s\n",
				proto, size, rtt, 2*float64(size)/rtt.Seconds()/1e6)
		}
	})
	return ok
}

// echoUntilBye bounces pings back until the bye marker arrives. The
// request recycles through the engine freelist each turn (results are
// read out before Release), so the echo loop allocates nothing. onOther,
// when non-nil, gets first claim on every non-bye tag (the bonded mode's
// phase markers) — a tag it reports consumed is not echoed.
func echoUntilBye(p *mpi.Proc, bufSize int, onOther func(tag int, payload []byte) bool) {
	buf := make([]byte, bufSize)
	for {
		r := p.Irecv(0, core.AnyTag, buf)
		p.WaitRecv(r)
		tag, n := r.MatchedTag(), r.Len()
		r.Release()
		if tag == tagBye {
			return
		}
		if onOther != nil && onOther(tag, buf[:n]) {
			continue
		}
		p.Send(0, tagPong, buf[:n])
	}
}

// patterned fills a buffer with position-derived bytes so corruption and
// cross-size mixups are detectable.
func patterned(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + 13)
	}
	return b
}
