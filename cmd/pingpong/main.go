// Command pingpong runs the classic latency/bandwidth sweep over the
// simulated MX fabric, for both the sequential baseline and the
// PIOMan-enabled engine.
//
// Usage:
//
//	pingpong [-quick] [-max 1048576]
package main

import (
	"flag"
	"fmt"

	"pioman/internal/core"
	"pioman/internal/exp"
)

func main() {
	quick := flag.Bool("quick", false, "reduced iteration counts")
	max := flag.Int("max", 1<<20, "largest message size")
	flag.Parse()
	exp.Quick = *quick

	var sizes []int
	for s := 8; s <= *max; s *= 2 {
		sizes = append(sizes, s)
	}
	fmt.Println(exp.FormatPingpong(exp.RunPingpong(core.Sequential, sizes),
		"Pingpong, sequential baseline (original NewMadeleine)"))
	fmt.Println(exp.FormatPingpong(exp.RunPingpong(core.Multithreaded, sizes),
		"Pingpong, multithreaded engine (NewMadeleine + PIOMan)"))
}
