package main

// The -json mode: the four-backend RTT/allocation benchmark behind
// BENCH_pingpong.json. One process opens each fabric backend in turn —
// the wire simulator, real loopback TCP sockets, real mmap'd
// shared-memory rings, real loopback UDP datagrams under the udpfab
// reliability sublayer — and measures raw-endpoint eager round trips at
// the paper's three regimes, recording RTT percentiles and the
// steady-state allocation cost per exchange, then WAN-conditioned UDP
// rows with seeded loss and latency injected beneath the sublayer. CI
// runs it on every build and uploads the file as an artifact, so the
// transports' latency and the zero-allocation hot path are tracked PR
// over PR instead of regressing silently.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"pioman/internal/fabric"
	"pioman/internal/fabric/shmfab"
	"pioman/internal/fabric/simfab"
	"pioman/internal/fabric/tcpfab"
	"pioman/internal/fabric/udpfab"
	"pioman/internal/nic"
	"pioman/internal/telemetry"
	"pioman/internal/wire"
)

// benchRow is one BENCH_pingpong.json record. RTT rows (bench
// "pingpong_rtt") fill the percentile fields; message-rate rows (bench
// "pingpong_msgrate", its per-frame control "pingpong_msgrate_ctrl" and
// its telemetry-on control "pingpong_msgrate_telem") fill MsgsPerSec
// and leave the percentiles zero.
type benchRow struct {
	Bench       string  `json:"bench"`
	Backend     string  `json:"backend"`
	SizeBytes   int     `json:"size_bytes"`
	Iters       int     `json:"iters"`
	RTTP50Ns    int64   `json:"rtt_p50_ns"`
	RTTP99Ns    int64   `json:"rtt_p99_ns"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	MsgsPerSec  float64 `json:"msgs_per_sec,omitempty"`
	// BatchOccupancy is nic.Stats.PolledFrames/PollBatches over the
	// measured window — frames amortized per paid-for endpoint visit.
	// Only the batched message-rate rows carry it (the per-frame control
	// never ticks the batch counters).
	BatchOccupancy float64 `json:"batch_occupancy,omitempty"`
	// LossPct and DelayNs describe the injected WAN conditions of the
	// "pingpong_rtt_wan" rows: the seeded datagram drop rate (percent)
	// and the added one-way latency. Zero on every clean-wire row.
	LossPct float64 `json:"loss_pct,omitempty"`
	DelayNs int64   `json:"delay_ns,omitempty"`
	// Peers, Goroutines and OpenFDs are the "pingpong_storm" rows'
	// scalability accounting: in-process spoke endpoints served, and the
	// process's goroutine/file-descriptor growth with every stream
	// established — measured before any bench-harness echo workers
	// start, so they reflect the transport alone. The poller-pool design
	// keeps Goroutines near one accept loop + pool-bounded pollers per
	// endpoint; the old goroutine-per-stream design grew it ~2×Peers on
	// the hub alone.
	Peers      int `json:"peers,omitempty"`
	Goroutines int `json:"goroutines,omitempty"`
	OpenFDs    int `json:"open_fds,omitempty"`
	// HubPollers is the hub endpoint's event-loop goroutine count with
	// all Peers streams live — the pool bound itself. The old design
	// needed 2×Peers goroutines on the hub for the same job.
	HubPollers int `json:"hub_pollers,omitempty"`
}

// benchJSONSizes spans the latency-bound, eager and rendezvous-class
// regimes, matching internal/fabric's RTT benchmarks.
var benchJSONSizes = []int{64, 4 << 10, 64 << 10}

// benchUDPSizes replaces the 64 KiB cell on the UDP backend: a 64 KiB
// payload exceeds udpfab's single-datagram frame ceiling (~64 KiB minus
// the reliability and codec headers), so the rendezvous-class cell runs
// at the rail's actual 32 KiB chunk size instead.
var benchUDPSizes = []int{64, 4 << 10, 32 << 10}

// benchWANLossPcts are the injected datagram drop rates of the WAN rows,
// in percent; benchWANDelay is their added one-way latency. Together
// they put numbers on what the reliability sublayer costs when the wire
// actually misbehaves — the committed rows CI tracks per build.
var benchWANLossPcts = []float64{0, 1, 5}

const benchWANDelay = 2 * time.Millisecond

// benchWANSize is the WAN rows' payload: the eager-class 4 KiB cell,
// where added latency and retransmit stalls dominate the wire time.
const benchWANSize = 4 << 10

// benchMsgRateSize is the message-rate benchmark's frame size: the
// 64-byte storm regime where fixed per-event costs dominate and the
// batched receive path earns its keep.
const benchMsgRateSize = 64

// runBenchJSON measures every backend and writes the rows to path,
// returning the process exit code.
func runBenchJSON(path string, quick bool) int {
	iters, warm := 1000, 100
	if quick {
		iters, warm = 200, 20
	}
	type backend struct {
		name string
		open func() (fabric.Fabric, error)
		// spinWait polls for replies instead of blocking — the wait
		// shape the engine itself uses on this backend. Simulator
		// worlds busy-poll (the idle hook); real transports run
		// NoIdlePolling and block, leaving the CPU to the kernel and
		// the runtime's network poller.
		spinWait bool
		// sizes overrides benchJSONSizes for transports whose frame
		// ceiling cannot carry the default cells (udpfab's datagrams).
		sizes []int
	}
	backends := []backend{
		{"sim", func() (fabric.Fabric, error) {
			return simfab.New(wire.NewFabric(2, wire.MYRI10G())), nil
		}, true, nil},
		{"tcp", func() (fabric.Fabric, error) { return tcpfab.NewLocal(2) }, false, nil},
		{"shm", func() (fabric.Fabric, error) { return shmfab.NewLocal(2, "") }, false, nil},
		{"udp", func() (fabric.Fabric, error) { return udpfab.NewLocal(2) }, false, benchUDPSizes},
	}
	// At millions of messages per second the storm must run long enough
	// that the rate reflects the steady state, not scheduler transients:
	// 400k messages keep the measured window in the tens of milliseconds.
	msgs := 400000
	if quick {
		msgs = 20000
	}
	var rows []benchRow
	for _, be := range backends {
		sizes := be.sizes
		if sizes == nil {
			sizes = benchJSONSizes
		}
		for _, size := range sizes {
			f, err := be.open()
			if err != nil {
				fmt.Fprintf(os.Stderr, "pingpong: open %s fabric: %v\n", be.name, err)
				return 1
			}
			row, err := benchOneRTT(f, be.name, size, warm, iters, be.spinWait)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "pingpong: bench %s/%dB: %v\n", be.name, size, err)
				return 1
			}
			rows = append(rows, row)
			fmt.Printf("pingpong: %-4s %8d B  rtt p50 %9v  p99 %9v  %6.2f allocs/op\n",
				be.name, size, time.Duration(row.RTTP50Ns), time.Duration(row.RTTP99Ns), row.AllocsPerOp)
		}
	}
	// The 64-byte message-rate storm: one-way back-to-back frames,
	// receiver draining through the batched path — the regime where
	// per-event overhead, not the wire, is the bottleneck. Two extra shm
	// control rows bracket the main rows in the same environment: one
	// drains the identical storm one Poll at a time (the pre-batch engine
	// shape, carrying the amortization the batched path buys), the other
	// drains it batched with the driver's full telemetry registered —
	// occupancy histogram and all — carrying the cost of observability,
	// which the telemetry layer's contract says is within 3% of the
	// unmetered row.
	type rateCase struct {
		bench   string
		backend int // index into backends
		batched bool
		metered bool
	}
	rateCases := []rateCase{
		{"pingpong_msgrate", 0, true, false},
		{"pingpong_msgrate", 1, true, false},
		{"pingpong_msgrate", 2, true, false},
		{"pingpong_msgrate", 3, true, false},
		{"pingpong_msgrate_ctrl", 2, false, false},
		{"pingpong_msgrate_telem", 2, true, true},
	}
	var shmRate, shmTelemRate float64
	for _, rc := range rateCases {
		be := backends[rc.backend]
		f, err := be.open()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pingpong: open %s fabric: %v\n", be.name, err)
			return 1
		}
		row, err := benchOneMsgRate(f, rc.bench, be.name, msgs, be.spinWait, rc.batched, rc.metered)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pingpong: bench %s %s: %v\n", rc.bench, be.name, err)
			return 1
		}
		rows = append(rows, row)
		drain := fmt.Sprintf("batched drain, occupancy %.1f", row.BatchOccupancy)
		if !rc.batched {
			drain = "per-frame drain"
		}
		if rc.metered {
			drain += ", telemetry on"
			shmTelemRate = row.MsgsPerSec
		} else if rc.bench == "pingpong_msgrate" && rc.backend == 2 {
			shmRate = row.MsgsPerSec
		}
		fmt.Printf("pingpong: %-4s %8d B  %9.0f msgs/s  (%s, %.2f allocs/msg)\n",
			be.name, benchMsgRateSize, row.MsgsPerSec, drain, row.AllocsPerOp)
	}
	if shmRate > 0 && shmTelemRate > 0 {
		fmt.Printf("pingpong: telemetry overhead on shm storm: %+.1f%%\n",
			(shmRate-shmTelemRate)/shmRate*100)
	}
	// The many-peer storm rows: hundreds of in-process tcpfab endpoints
	// storming 64-byte frames through one hub, tracking msgs/s plus the
	// goroutine and fd cost of serving that many live streams — the
	// C10K accounting the poller-pool refactor is judged by.
	stormPeers := []int{64, 256, 512}
	stormMsgs := 100000
	if quick {
		stormPeers = []int{64, 256}
		stormMsgs = 20000
	}
	for _, peers := range stormPeers {
		row, err := benchOneStorm(peers, stormMsgs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pingpong: storm %d peers: %v\n", peers, err)
			return 1
		}
		rows = append(rows, row)
		fmt.Printf("pingpong: tcp  %5d peers %9.0f msgs/s  (%d hub pollers, +%d goroutines, +%d fds)\n",
			row.Peers, row.MsgsPerSec, row.HubPollers, row.Goroutines, row.OpenFDs)
	}
	// The WAN rows: the same raw-endpoint round trip over udpfab, but
	// with seeded chaos injected beneath the reliability sublayer — 2 ms
	// of added one-way latency at 0%, 1% and 5% datagram loss. The 0%
	// row isolates the latency floor; the lossy rows price the
	// retransmit stalls (RTO-bound, visible in p99 long before p50) that
	// a WAN-grade wire extracts from the window machinery. Exchanges
	// still complete intact — that is the sublayer's contract — so these
	// rows measure cost, not correctness. Fewer iterations than the
	// loopback cells: each round trip floors at twice the injected
	// latency.
	wanIters, wanWarm := 200, 20
	if quick {
		wanIters, wanWarm = 50, 5
	}
	for _, lossPct := range benchWANLossPcts {
		f, err := udpfab.NewLocalChaos(2, &udpfab.ChaosParams{
			Seed:  7,
			Drop:  lossPct / 100,
			Delay: benchWANDelay,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pingpong: open udp WAN fabric: %v\n", err)
			return 1
		}
		row, err := benchOneRTT(f, "udp", benchWANSize, wanWarm, wanIters, false)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pingpong: bench udp WAN %.0f%%: %v\n", lossPct, err)
			return 1
		}
		row.Bench = "pingpong_rtt_wan"
		row.LossPct = lossPct
		row.DelayNs = benchWANDelay.Nanoseconds()
		rows = append(rows, row)
		fmt.Printf("pingpong: udp  %8d B  rtt p50 %9v  p99 %9v  (wan: %.0f%% loss, %v delay)\n",
			benchWANSize, time.Duration(row.RTTP50Ns), time.Duration(row.RTTP99Ns), lossPct, benchWANDelay)
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pingpong: encode rows: %v\n", err)
		return 1
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "pingpong: write %s: %v\n", path, err)
		return 1
	}
	fmt.Printf("pingpong: wrote %d rows to %s\n", len(rows), path)
	return 0
}

// captures reports the endpoint's fabric.SendCapturer capability, which
// decides whether the bench recycles outbound packet structs itself
// (captured sends) or leaves them to the receiving side (the simulator
// delivers the injected packet object).
func captures(ep fabric.Endpoint) bool {
	c, ok := ep.(fabric.SendCapturer)
	return ok && c.SendCaptures()
}

// benchOneRTT runs one backend/size cell: endpoint 0 sweeps, endpoint 1
// echoes from a goroutine, both recycling packets through the fabric
// pools — the same discipline the engine's hot path follows, so the
// allocs-per-op column reflects what the engine would pay.
func benchOneRTT(f fabric.Fabric, name string, size, warm, iters int, spinWait bool) (benchRow, error) {
	ep0, err := f.Endpoint(0)
	if err != nil {
		return benchRow{}, err
	}
	ep1, err := f.Endpoint(1)
	if err != nil {
		return benchRow{}, err
	}
	quit := make(chan struct{})
	defer close(quit)
	go echoPooled(ep1, quit, spinWait)

	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i*7 + 13)
	}
	capt := captures(ep0)
	samples := make([]time.Duration, iters)
	var seq uint64
	roundTrip := func() error {
		seq++
		out := fabric.GetPacket()
		out.Kind, out.Src, out.Dst, out.Seq, out.Payload = wire.PktEager, 0, 1, seq, payload
		if err := ep0.Send(out); err != nil {
			return err
		}
		if capt {
			fabric.ReleasePacket(out)
		}
		// Wait the way the engine waits on this backend: cooperative
		// polling on the simulator (its µs-scale modeled arrivals sit
		// below timer resolution, and blocking would measure the timer),
		// genuine blocking on real transports (a poll loop starves the
		// echo goroutine and the runtime's network poller into multi-ms
		// pathology). The wait is bounded: a reply that never comes (a
		// lost frame, a dead echo peer) must fail the benchmark with a
		// diagnosable error, not hang CI until its job timeout.
		var p *wire.Packet
		lost := time.Now().Add(10 * time.Second)
		for p == nil {
			if spinWait {
				if p = ep0.Poll(); p == nil {
					runtime.Gosched()
				}
			} else {
				p = ep0.BlockingRecv(time.Second)
			}
			if p == nil && time.Now().After(lost) {
				return fmt.Errorf("no echo for seq %d within 10s (frame lost or echo peer dead)", seq)
			}
		}
		fabric.ReleasePacket(p)
		return nil
	}
	for i := 0; i < warm; i++ {
		if err := roundTrip(); err != nil {
			return benchRow{}, err
		}
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		if err := roundTrip(); err != nil {
			return benchRow{}, err
		}
		samples[i] = time.Since(t0)
	}
	runtime.ReadMemStats(&m1)
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return benchRow{
		Bench:       "pingpong_rtt",
		Backend:     name,
		SizeBytes:   size,
		Iters:       iters,
		RTTP50Ns:    samples[iters/2].Nanoseconds(),
		RTTP99Ns:    samples[iters*99/100].Nanoseconds(),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(iters),
	}, nil
}

// benchOneMsgRate measures one backend's 64-byte one-way message rate:
// endpoint 0 streams back-to-back frames in engine-batch-sized bursts
// and endpoint 1 drains each burst through the nic driver layer — the exact per-frame
// call stack the engine's progress loop pays — before the next burst
// starts. The windowed shape keeps the measurement deterministic (the
// transport's conduit, not its unbounded overflow buffering, is what
// gets timed) and stays honest on one-core hosts, where a free-running
// flood measures the scheduler instead of the transport. batched drains
// through Driver.PollBatch with a reused 64-slot buffer (the engine's
// receive shape after the batching work); the control drains the
// identical storm one Driver.Poll at a time (the shape before it). Both
// recycle every packet through the fabric pools, so allocs-per-message
// reflects the steady state the engine would pay. metered registers the
// driver's full telemetry (counters, lost-frames read, batch-occupancy
// histogram) in a live registry before the storm — the telemetry-on
// control row proving observability stays within its 3% rate budget.
func benchOneMsgRate(f fabric.Fabric, bench, name string, msgs int, spinWait, batched, metered bool) (benchRow, error) {
	ep0, err := f.Endpoint(0)
	if err != nil {
		return benchRow{}, err
	}
	ep1, err := f.Endpoint(1)
	if err != nil {
		return benchRow{}, err
	}
	// RealParams carries no modeled CPU costs, so the driver layer adds
	// exactly its bookkeeping — what the engine pays — to every drain.
	// The UDP preset is the same shape with an MTU the datagram frame
	// ceiling accepts (nic.New rejects the mismatch at construction).
	params := nic.RealParams()
	if name == "udp" {
		params = nic.UdpParams()
	}
	drv := nic.New(params, ep1)
	if metered {
		drv.RegisterMetrics(telemetry.NewRegistry(), "bench.rail."+name)
	}
	payload := make([]byte, benchMsgRateSize)
	for i := range payload {
		payload[i] = byte(i*7 + 13)
	}
	capt := captures(ep0)
	// Bursts are sized to the engine's receive batch (core.pollBatchSize
	// is 64), so one burst is one batched drain in the steady state.
	const burst = 64
	batch := make([]*wire.Packet, 64)
	var seq uint64
	burstDrain := func(n int) error {
		for i := 0; i < n; i++ {
			seq++
			out := fabric.GetPacket()
			out.Kind, out.Src, out.Dst, out.Seq, out.Payload = wire.PktEager, 0, 1, seq, payload
			if err := ep0.Send(out); err != nil {
				return err
			}
			if capt {
				fabric.ReleasePacket(out)
			}
		}
		deadline := time.Now().Add(30 * time.Second)
		got, empty := 0, 0
		for got < n {
			var k int
			if batched {
				k = drv.PollBatch(batch)
			} else if p := drv.Poll(); p != nil {
				batch[0], k = p, 1
			}
			if k == 0 {
				if time.Now().After(deadline) {
					return fmt.Errorf("received %d of %d frames within 30s (frames lost?)", got, n)
				}
				// Yield so the transport's background goroutines (socket
				// readers, ring pumps) can move the burst; a short sleep
				// after a long dry stretch keeps a one-core host from
				// starving them entirely.
				if empty++; spinWait || empty < 256 {
					runtime.Gosched()
				} else {
					time.Sleep(5 * time.Microsecond)
				}
				continue
			}
			empty = 0
			for _, p := range batch[:k] {
				fabric.ReleasePacket(p)
			}
			got += k
		}
		return nil
	}
	// Warm pools, rings and connection setup outside the measured window.
	for sent := 0; sent < msgs/10 && sent < 2000; sent += burst {
		if err := burstDrain(burst); err != nil {
			return benchRow{}, err
		}
	}
	s0 := drv.Stats() // occupancy is reported for the measured window only
	// The storm runs as segments and the reported rate is the median
	// segment: a descheduling blip lands in one segment and is shed,
	// instead of polluting a single long window — the message-rate analog
	// of the RTT rows' percentile reporting. Segments are whole bursts,
	// so the counts the rate and allocs/msg divide by are exact.
	const segments = 20
	segBursts := (msgs/segments + burst - 1) / burst
	segMsgs := segBursts * burst
	rates := make([]float64, 0, segments)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for s := 0; s < segments; s++ {
		t0 := time.Now()
		for b := 0; b < segBursts; b++ {
			if err := burstDrain(burst); err != nil {
				return benchRow{}, err
			}
		}
		rates = append(rates, float64(segMsgs)/time.Since(t0).Seconds())
	}
	runtime.ReadMemStats(&m1)
	sort.Float64s(rates)
	row := benchRow{
		Bench:       bench,
		Backend:     name,
		SizeBytes:   benchMsgRateSize,
		Iters:       segments * segMsgs,
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(segments*segMsgs),
		MsgsPerSec:  rates[segments/2],
	}
	if st := drv.Stats(); st.PollBatches > s0.PollBatches {
		row.BatchOccupancy = float64(st.PolledFrames-s0.PolledFrames) / float64(st.PollBatches-s0.PollBatches)
	}
	return row, nil
}

// echoPooled bounces every packet on ep back to its source, recycling
// inbound packets (and, on capturing transports, outbound structs)
// through the fabric pools. spinWait mirrors benchOneRTT's wait shape.
func echoPooled(ep fabric.Endpoint, quit <-chan struct{}, spinWait bool) {
	capt := captures(ep)
	for {
		select {
		case <-quit:
			return
		default:
		}
		var p *wire.Packet
		if spinWait {
			if p = ep.Poll(); p == nil {
				runtime.Gosched()
				continue
			}
		} else if p = ep.BlockingRecv(50 * time.Millisecond); p == nil {
			continue
		}
		out := fabric.GetPacket()
		out.Kind, out.Src, out.Dst, out.Seq, out.Payload = wire.PktEager, ep.Self(), p.Src, p.Seq, p.Payload
		err := ep.Send(out)
		if capt {
			fabric.ReleasePacket(out)
		}
		fabric.ReleasePacket(p)
		if err != nil {
			// The sweep side will miss this reply, hit its bounded wait
			// and report the failure; echoing on a broken endpoint would
			// only repeat the error.
			return
		}
	}
}
