package main

// The many-peer storm rows: the C10K half of the benchmark. One process
// opens a hub plus hundreds of spoke tcpfab endpoints on real localhost
// sockets, storms 64-byte frames hub→spokes→hub, and records — next to
// the message rate — what servicing that many live TCP streams costs in
// goroutines and file descriptors. The old goroutine-per-stream design
// scaled both at ~2×peers; the poller pool keeps the servicing goroutine
// count at the pool bound, which is what these committed rows track.

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
	"time"

	"pioman/internal/fabric"
	"pioman/internal/fabric/tcpfab"
	"pioman/internal/wire"
)

// stormBurst frames ride toward each spoke per window; the hub drains
// all echoes before the next window, so in-flight stays bounded at
// stormBurst×peers and a one-core host measures the transport, not an
// unbounded overflow queue.
const stormBurst = 4

// maxStormPollers mirrors tcpfab's poller-pool cap (min(NumCPU, 8)):
// the hub's poller count in a storm row can never legitimately exceed
// it, which the bench schema test pins.
const maxStormPollers = 8

// raiseFDLimit lifts the soft open-files limit to the hard cap: a
// 512-spoke storm holds ~4 descriptors per endpoint (socket pairs,
// listeners, epoll instances, wake pipes), which overflows the 1024
// default soft limit long before it troubles any real hard limit.
func raiseFDLimit() {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil || rl.Cur >= rl.Max {
		return
	}
	rl.Cur = rl.Max
	syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl)
}

// countFDs returns the process's open file-descriptor count.
func countFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents) - 1 // minus the ReadDir handle itself
}

// benchOneStorm opens one listening hub plus peers dialing spoke
// endpoints in-process — the true C10K shape: many clients, one server
// — establishes every stream, measures the steady-state goroutine and
// fd growth attributable to the fabric (and the hub's own poller count,
// the pool bound the refactor is judged by), then storms frames through
// all streams at once and reports the aggregate delivery rate (frames
// arriving at any endpoint per second, both directions counted — each
// round trip moves two).
func benchOneStorm(peers, msgs int) (benchRow, error) {
	raiseFDLimit()
	runtime.GC()
	baseGoroutines := runtime.NumGoroutine()
	baseFDs := countFDs()

	hub, err := tcpfab.New(tcpfab.Config{Self: 0, Nodes: peers + 1, Listen: "127.0.0.1:0"})
	if err != nil {
		return benchRow{}, fmt.Errorf("open storm hub: %w", err)
	}
	defer hub.Close()
	hubAddr := hub.Addr().String()
	spokes := make([]*tcpfab.Endpoint, 0, peers)
	defer func() {
		for _, ep := range spokes {
			ep.Close()
		}
	}()
	// Spokes are pure clients: no listener, just a dialed stream to the
	// hub, established up front so the steady-state accounting (and the
	// measured window) excludes dial costs. The hub adopts each accepted
	// stream as its send path back.
	for r := 1; r <= peers; r++ {
		ep, err := tcpfab.New(tcpfab.Config{
			Self: r, Nodes: peers + 1,
			Peers: map[int]string{0: hubAddr},
		})
		if err != nil {
			return benchRow{}, fmt.Errorf("open spoke %d: %w", r, err)
		}
		spokes = append(spokes, ep)
		if err := ep.Dial(0); err != nil {
			return benchRow{}, fmt.Errorf("dial hub from spoke %d: %w", r, err)
		}
	}

	// The spokes' dials return once their side registers; wait for the
	// hub to finish adopting every accepted stream before accounting.
	settle := time.Now().Add(10 * time.Second)
	for hub.OpenConns() < peers {
		if time.Now().After(settle) {
			return benchRow{}, fmt.Errorf("hub holds %d streams, want %d", hub.OpenConns(), peers)
		}
		time.Sleep(time.Millisecond)
	}

	// Echo workers are bench harness, not transport: one goroutine per
	// spoke would drown the accounting this row exists to report, so
	// they are excluded by measuring first.
	goroutines := runtime.NumGoroutine() - baseGoroutines
	openFDs := countFDs() - baseFDs
	hubPollers := hub.Pollers()

	quit := make(chan struct{})
	defer close(quit)
	for _, ep := range spokes {
		go echoPooled(ep, quit, false)
	}

	payload := make([]byte, benchMsgRateSize)
	for i := range payload {
		payload[i] = byte(i*7 + 13)
	}
	capt := captures(hub)
	var seq uint64
	window := func() error {
		for b := 0; b < stormBurst; b++ {
			for r := 1; r <= peers; r++ {
				seq++
				out := fabric.GetPacket()
				out.Kind, out.Src, out.Dst, out.Seq, out.Payload = wire.PktEager, 0, r, seq, payload
				if err := hub.Send(out); err != nil {
					return err
				}
				if capt {
					fabric.ReleasePacket(out)
				}
			}
		}
		want := stormBurst * peers
		deadline := time.Now().Add(60 * time.Second)
		for got := 0; got < want; {
			p := hub.BlockingRecv(time.Second)
			if p == nil {
				if time.Now().After(deadline) {
					return fmt.Errorf("echoes stalled: %d of %d frames within 60s", got, want)
				}
				continue
			}
			fabric.ReleasePacket(p)
			got++
		}
		return nil
	}
	windows := (msgs + stormBurst*peers - 1) / (stormBurst * peers)
	warm := windows / 10
	if warm < 1 {
		warm = 1
	}
	for w := 0; w < warm; w++ {
		if err := window(); err != nil {
			return benchRow{}, err
		}
	}
	t0 := time.Now()
	for w := 0; w < windows; w++ {
		if err := window(); err != nil {
			return benchRow{}, err
		}
	}
	elapsed := time.Since(t0)
	frames := 2 * windows * stormBurst * peers // out and echoed back
	return benchRow{
		Bench:      "pingpong_storm",
		Backend:    "tcp",
		SizeBytes:  benchMsgRateSize,
		Iters:      frames,
		Peers:      peers,
		Goroutines: goroutines,
		OpenFDs:    openFDs,
		HubPollers: hubPollers,
		MsgsPerSec: float64(frames) / elapsed.Seconds(),
	}, nil
}
