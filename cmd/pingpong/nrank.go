package main

// The -nrank mode: one rank of an N-process cluster launched through
// cmd/nmrun (or by hand against a standalone registry). Ranks pair up
// with their XOR-1 neighbor (0↔1, 2↔3, …) and pingpong eager-class
// messages for a fixed duration, then fold per-rank message rates into
// a cluster total with AllReduceSumI64 over the survivor set. A rank
// whose partner dies mid-run reports core.ErrPeerDead and finishes
// cleanly — this mode is the CI vehicle for the bounded-failure
// semantics (docs/CLUSTER.md): nmrun kills one rank, survivors must
// still exit 0.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"time"

	"pioman/internal/core"
	"pioman/internal/mpi"
	"pioman/internal/telemetry"
	"pioman/internal/topo"
)

// nrankSize is the pairwise exchange payload: the eager-class 4 KiB
// cell, so rates measure protocol overhead rather than wire bandwidth.
const nrankSize = 4 << 10

// Payload sentinels of the pairwise stop protocol: the initiator (even
// rank) owns the clock, so the responder learns the run is over from
// the last message's first byte instead of guessing from its own timer.
const (
	nrankMore = 1
	nrankLast = 2
)

// runNrank executes this process's rank of the N-rank pingpong and
// returns the exit code. Cluster identity comes from the nmrun
// environment contract (mpi.JoinCluster).
func runNrank(dur time.Duration, quick bool, jsonPath string, metrics *telemetry.Registry) int {
	if quick {
		dur = dur / 2
	}
	if runtime.GOMAXPROCS(0) < 6 {
		runtime.GOMAXPROCS(6)
	}
	cw, err := mpi.JoinCluster(mpi.Config{
		Mode:           core.Multithreaded,
		OffloadEager:   true,
		EnableBlocking: true,
		NoIdlePolling:  true,
		Machine:        topo.Machine{Sockets: 1, CoresPerSocket: 2},
		Metrics:        metrics,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pingpong: %v\n", err)
		return 1
	}
	defer cw.Close()
	rank, size := cw.Rank, cw.Size()
	partner := rank ^ 1
	if partner >= size {
		partner = -1 // odd world: the last rank sits the exchange out
	}
	fmt.Printf("pingpong: rank %d of %d up (partner %d)\n", rank, size, partner)

	code := 0
	cw.Self().Run(func(p *mpi.Proc) {
		p.Barrier()
		var (
			msgs    int64
			elapsed time.Duration
			deadErr error
		)
		if partner >= 0 {
			msgs, elapsed, deadErr = nrankExchange(p, rank, partner, dur)
		}
		rate := float64(0)
		if elapsed > 0 {
			rate = float64(msgs) / elapsed.Seconds()
		}
		switch {
		case deadErr != nil && !nrankPeerDead(deadErr):
			fmt.Fprintf(os.Stderr, "pingpong: rank %d: exchange with %d failed: %v\n", rank, partner, deadErr)
			code = 1
		case deadErr != nil:
			fmt.Printf("pingpong: rank %d: partner %d died mid-run (%v) after %d msgs; continuing with survivors\n",
				rank, partner, deadErr, msgs)
		case partner >= 0:
			fmt.Printf("pingpong: rank %d <-> %d: %d msgs in %v (%.0f msgs/s)\n",
				rank, partner, msgs, elapsed.Round(time.Millisecond), rate)
		}
		// Fold the survivor set's totals; a dead rank's contribution
		// error-completes at rank 0 and is left out of the sum.
		totalMsgs := p.AllReduceSumI64(msgs)
		totalRate := p.AllReduceSum(rate)
		if rank == 0 {
			fmt.Printf("pingpong: cluster total %d msgs, %.0f msgs/s across %d ranks\n",
				totalMsgs, totalRate, size)
			if jsonPath != "" {
				if err := writeNrankRow(jsonPath, size, int(totalMsgs), totalRate); err != nil {
					fmt.Fprintf(os.Stderr, "pingpong: %v\n", err)
					code = 1
					return
				}
				fmt.Printf("pingpong: merged nrank row into %s\n", jsonPath)
			}
		}
	})
	fmt.Printf("pingpong: rank %d ok\n", rank)
	return code
}

// nrankExchange runs the pairwise pingpong until the initiator's clock
// expires (or the partner dies), returning messages exchanged, the
// measured window, and the partner-death error if one ended the run.
// The even rank initiates and owns the duration; the odd rank echoes
// until the nrankLast sentinel.
func nrankExchange(p *mpi.Proc, rank, partner int, dur time.Duration) (int64, time.Duration, error) {
	buf := make([]byte, nrankSize)
	for i := range buf {
		buf[i] = byte(i*7 + 13)
	}
	var msgs int64
	start := time.Now()
	if rank&1 == 0 {
		for {
			buf[0] = nrankMore
			if time.Since(start) >= dur {
				buf[0] = nrankLast
			}
			if err := p.SendErr(partner, tagPing, buf); err != nil {
				return msgs, time.Since(start), err
			}
			msgs++
			last := buf[0] == nrankLast
			if _, _, err := p.RecvErr(partner, tagPong, buf); err != nil {
				return msgs, time.Since(start), err
			}
			msgs++
			if last {
				return msgs, time.Since(start), nil
			}
		}
	}
	for {
		if _, _, err := p.RecvErr(partner, tagPing, buf); err != nil {
			return msgs, time.Since(start), err
		}
		msgs++
		last := buf[0] == nrankLast
		if err := p.SendErr(partner, tagPong, buf); err != nil {
			return msgs, time.Since(start), err
		}
		msgs++
		if last {
			return msgs, time.Since(start), nil
		}
	}
}

// nrankPeerDead reports whether err is the bounded-failure completion.
func nrankPeerDead(err error) bool { return errors.Is(err, core.ErrPeerDead) }

// writeNrankRow merges the cluster row into the BENCH file, replacing
// any previous pingpong_nrank row at the same world size so reruns stay
// idempotent (the raw-endpoint rows are untouched).
func writeNrankRow(path string, peers, iters int, rate float64) error {
	var rows []benchRow
	if old, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(old, &rows); err != nil {
			return fmt.Errorf("parse existing %s: %w", path, err)
		}
	}
	kept := rows[:0]
	for _, r := range rows {
		if !(r.Bench == "pingpong_nrank" && r.Peers == peers) {
			kept = append(kept, r)
		}
	}
	rows = append(kept, benchRow{
		Bench:      "pingpong_nrank",
		Backend:    "tcp",
		SizeBytes:  nrankSize,
		Iters:      iters,
		MsgsPerSec: rate,
		Peers:      peers,
	})
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
