// Command nmtrace replays the paper's Fig. 1 as a live timeline: it runs
// one asynchronous send (eager by default, rendezvous with -size above
// 32 KiB) under both engines and dumps each node's annotated event trace,
// showing sequential request submission on the communicating thread versus
// event-driven submission on an idle core.
//
// With -perfetto the same recorded exchange is also written as Chrome
// trace-event JSON — loadable at ui.perfetto.dev or chrome://tracing —
// with one process track per (engine mode, node) and one thread track
// per core, so the text timeline becomes a scrollable visual one.
//
// Usage:
//
//	nmtrace [-size 4096] [-compute 20µs] [-perfetto out.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pioman/internal/core"
	"pioman/internal/mpi"
	"pioman/internal/trace"
)

func main() {
	size := flag.Int("size", 4096, "message size in bytes")
	compute := flag.Duration("compute", 20*time.Microsecond, "computation overlapped with the send")
	perfetto := flag.String("perfetto", "", "also write the traces as Chrome trace-event JSON to this file")
	flag.Parse()

	var streams []trace.ChromeStream
	for mi, mode := range []struct {
		name  string
		short string
		cfg   mpi.Config
	}{
		{"sequential (original NewMadeleine)", "seq", mpi.DefaultSequential(2)},
		{"multithreaded (NewMadeleine + PIOMan)", "piom", mpi.DefaultMultithreaded(2)},
	} {
		cfg := mode.cfg
		cfg.TraceCapacity = 4096
		w := mpi.NewWorld(cfg)
		runOnce(w, *size, *compute)
		fmt.Printf("=== %s: isend(%d bytes) + compute(%v) + swait ===\n", mode.name, *size, *compute)
		fmt.Println("--- sender (node 0) ---")
		w.Node(0).Trace.Dump(os.Stdout)
		fmt.Println("--- receiver (node 1) ---")
		w.Node(1).Trace.Dump(os.Stdout)
		fmt.Println()
		for rank := 0; rank < 2; rank++ {
			streams = append(streams, trace.ChromeStream{
				// Distinct pids per (mode, rank) keep the four tracks
				// separate in the Perfetto UI.
				PID:    mi*2 + rank,
				Name:   fmt.Sprintf("%s node%d", mode.short, rank),
				Events: w.Node(rank).Trace.Events(),
			})
		}
		w.Close()
	}

	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nmtrace:", err)
			os.Exit(1)
		}
		if err := trace.WriteChromeTrace(f, streams); err != nil {
			fmt.Fprintln(os.Stderr, "nmtrace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "nmtrace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote Chrome trace-event JSON to %s (open at ui.perfetto.dev)\n", *perfetto)
	}
}

// runOnce performs a few warm-up exchanges, then records exactly one.
func runOnce(w *mpi.World, size int, compute time.Duration) {
	w.RunAll(func(p *mpi.Proc) {
		data := make([]byte, size)
		buf := make([]byte, size)
		peer := 1 - p.Rank()
		p.Barrier()
		for it := 0; it < 4; it++ {
			if it == 3 {
				// Record only the steady-state iteration.
				w.Node(p.Rank()).Trace.Reset()
			}
			var s *core.SendReq
			var r *core.RecvReq
			r = p.Irecv(peer, 1, buf)
			s = p.Isend(peer, 1, data)
			p.Compute(compute)
			p.WaitSend(s)
			p.WaitRecv(r)
		}
	})
}
