// Command nmtrace replays the paper's Fig. 1 as a live timeline: it runs
// one asynchronous send (eager by default, rendezvous with -size above
// 32 KiB) under both engines and dumps each node's annotated event trace,
// showing sequential request submission on the communicating thread versus
// event-driven submission on an idle core.
//
// Usage:
//
//	nmtrace [-size 4096] [-compute 20µs]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pioman/internal/core"
	"pioman/internal/mpi"
)

func main() {
	size := flag.Int("size", 4096, "message size in bytes")
	compute := flag.Duration("compute", 20*time.Microsecond, "computation overlapped with the send")
	flag.Parse()

	for _, mode := range []struct {
		name string
		cfg  mpi.Config
	}{
		{"sequential (original NewMadeleine)", mpi.DefaultSequential(2)},
		{"multithreaded (NewMadeleine + PIOMan)", mpi.DefaultMultithreaded(2)},
	} {
		cfg := mode.cfg
		cfg.TraceCapacity = 4096
		w := mpi.NewWorld(cfg)
		runOnce(w, *size, *compute)
		fmt.Printf("=== %s: isend(%d bytes) + compute(%v) + swait ===\n", mode.name, *size, *compute)
		fmt.Println("--- sender (node 0) ---")
		w.Node(0).Trace.Dump(os.Stdout)
		fmt.Println("--- receiver (node 1) ---")
		w.Node(1).Trace.Dump(os.Stdout)
		fmt.Println()
		w.Close()
	}
}

// runOnce performs a few warm-up exchanges, then records exactly one.
func runOnce(w *mpi.World, size int, compute time.Duration) {
	w.RunAll(func(p *mpi.Proc) {
		data := make([]byte, size)
		buf := make([]byte, size)
		peer := 1 - p.Rank()
		p.Barrier()
		for it := 0; it < 4; it++ {
			if it == 3 {
				// Record only the steady-state iteration.
				w.Node(p.Rank()).Trace.Reset()
			}
			var s *core.SendReq
			var r *core.RecvReq
			r = p.Irecv(peer, 1, buf)
			s = p.Isend(peer, 1, data)
			p.Compute(compute)
			p.WaitSend(s)
			p.WaitRecv(r)
		}
	})
}
