// Command nmbench regenerates the paper's evaluation (§4): Fig. 5 (small
// message offloading), Fig. 6 (rendezvous progression), Table 1 (the
// convolution meta-application), and the design ablations listed in
// DESIGN.md.
//
// Usage:
//
//	nmbench -experiment fig5|fig6|table1|ablation|all [-quick] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pioman/internal/exp"
	"pioman/internal/stats"
)

func main() {
	experiment := flag.String("experiment", "all", "fig5, fig6, table1, ablation, or all")
	quick := flag.Bool("quick", false, "reduced iteration counts (smoke test)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	exp.Quick = *quick

	run := map[string]bool{}
	for _, e := range strings.Split(*experiment, ",") {
		run[strings.TrimSpace(e)] = true
	}
	all := run["all"]

	did := false
	if all || run["fig5"] {
		did = true
		pts := exp.RunFig5()
		if *csv {
			emitOverlapCSV("fig5", pts)
		} else {
			fmt.Println(exp.FormatOverlap(pts, "Figure 5: small messages offloading (isend + 20µs compute + swait)"))
		}
	}
	if all || run["fig6"] {
		did = true
		pts := exp.RunFig6()
		if *csv {
			emitOverlapCSV("fig6", pts)
		} else {
			fmt.Println(exp.FormatOverlap(pts, "Figure 6: rendezvous progression (isend + 100µs compute + swait)"))
		}
	}
	if all || run["table1"] {
		did = true
		rows := exp.RunTable1()
		if *csv {
			fmt.Println("experiment,threads,no_offload_us,offload_us,speedup_pct")
			for _, r := range rows {
				fmt.Printf("table1,%d,%.1f,%.1f,%.1f\n",
					r.Threads, stats.US(r.NoOffload), stats.US(r.Offload), r.SpeedupPct)
			}
		} else {
			fmt.Println(exp.FormatTable1(rows))
		}
	}
	if all || run["ablation"] {
		did = true
		fmt.Println(exp.FormatAblation("Ablation: Isend return time, 16K eager message (§2.2)",
			exp.RunAblationOffload(16<<10)))
		fmt.Println(exp.FormatAblation("Ablation: 16 x 512B burst to one destination (strategy)",
			exp.RunAblationStrategy(16, 512)))
		fmt.Println(exp.FormatAblation("Ablation: 64K exchange with all cores computing (blocking fallback)",
			exp.RunAblationBlocking(64<<10)))
		fmt.Println(exp.FormatAblation("Ablation: adaptive offload policy, 16K exchange (§5 future work)",
			exp.RunAblationAdaptive(16<<10)))
	}
	if !did {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want fig5, fig6, table1, ablation, all)\n", *experiment)
		os.Exit(2)
	}
}

func emitOverlapCSV(name string, pts []exp.OverlapPoint) {
	fmt.Println("experiment,size_bytes,reference_us,no_offload_us,offload_us")
	for _, p := range pts {
		fmt.Printf("%s,%d,%.2f,%.2f,%.2f\n", name, p.Size,
			stats.US(p.Reference), stats.US(p.Sequential), stats.US(p.Offload))
	}
}
