module pioman

go 1.22
