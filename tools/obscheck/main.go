// Command obscheck validates observability artifacts in CI's bench
// smoke: the Prometheus text and JSON snapshots scraped from a live
// -metrics endpoint, and the Chrome trace-event JSON nmtrace -perfetto
// writes. It exits nonzero with a diagnostic when an artifact would be
// rejected by its consumer (Prometheus' text parser, nmtop's snapshot
// decoder, the Perfetto UI), so a broken exporter fails the build
// instead of uploading an unloadable artifact.
//
// Usage:
//
//	obscheck -prom metrics.txt -json metrics.json -trace trace.json
//
// Any subset of the three flags may be given; each names a file to
// validate with the matching checker.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pioman/internal/telemetry"
	"pioman/internal/trace"
)

func main() {
	prom := flag.String("prom", "", "Prometheus text exposition file to validate")
	jsonPath := flag.String("json", "", "telemetry JSON snapshot file to validate")
	tracePath := flag.String("trace", "", "Chrome trace-event JSON file to validate")
	flag.Parse()
	if *prom == "" && *jsonPath == "" && *tracePath == "" {
		fmt.Fprintln(os.Stderr, "obscheck: nothing to check (give -prom, -json and/or -trace)")
		os.Exit(2)
	}
	code := 0
	check := func(name, path string, fn func(io.Reader) error) {
		if path == "" {
			return
		}
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
			code = 1
			return
		}
		defer f.Close()
		if err := fn(f); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %s %s: %v\n", name, path, err)
			code = 1
			return
		}
		fmt.Printf("obscheck: %s %s ok\n", name, path)
	}
	check("prom", *prom, checkProm)
	check("json", *jsonPath, checkJSON)
	check("trace", *tracePath, trace.CheckChromeTrace)
	os.Exit(code)
}

// checkProm validates the Prometheus text exposition format the way its
// scraper would: every non-comment line is "name value" with a
// pioman_-prefixed identifier, every series is preceded by a TYPE
// header, and at least one sample is present.
func checkProm(f io.Reader) error {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	typed := map[string]bool{}
	samples := 0
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				typed[fields[2]] = true
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return fmt.Errorf("line %d: %d fields, want \"name value\"", line, len(fields))
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				return fmt.Errorf("line %d: unterminated label set in %q", line, name)
			}
			name = name[:i]
		}
		if !strings.HasPrefix(name, "pioman_") {
			return fmt.Errorf("line %d: series %q lacks the pioman_ namespace", line, name)
		}
		// Histogram series carry the family name plus a suffix; the TYPE
		// header names the family.
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suf); ok && typed[f] {
				family = f
				break
			}
		}
		if !typed[family] {
			return fmt.Errorf("line %d: series %q has no preceding TYPE header", line, name)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples")
	}
	return nil
}

// checkJSON validates a /metrics.json capture: it must decode as a
// telemetry snapshot with a timestamp and at least one named metric —
// what cmd/nmtop needs from every poll.
func checkJSON(f io.Reader) error {
	var s telemetry.Snapshot
	if err := json.NewDecoder(f).Decode(&s); err != nil {
		return err
	}
	if s.TakenUnixNano == 0 {
		return fmt.Errorf("snapshot has no timestamp")
	}
	if len(s.Metrics) == 0 {
		return fmt.Errorf("snapshot has no metrics")
	}
	for i, m := range s.Metrics {
		if m.Name == "" {
			return fmt.Errorf("metric %d has no name", i)
		}
	}
	return nil
}
