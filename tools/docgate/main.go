// Command docgate runs the repo's godoc-coverage gate (see
// internal/docgate) over package directories given as arguments,
// printing one line per exported identifier missing a doc comment and
// exiting nonzero when any gated package fails:
//
//	go run ./tools/docgate internal/fabric internal/nic internal/mpi
//
// With no arguments it gates the same package set the docgate test
// suite does.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"pioman/internal/docgate"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		for _, d := range docgate.GatedDirsFromRoot() {
			dirs = append(dirs, d)
		}
	}
	failed := false
	for _, dir := range dirs {
		missing, err := docgate.Missing(filepath.Clean(dir))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
			continue
		}
		for _, m := range missing {
			fmt.Println(m)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("docgate: %d packages fully documented\n", len(dirs))
}
