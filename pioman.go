// Package pioman is a Go reproduction of "A multithreaded communication
// engine for multicore architectures" (Trahay, Brunet, Denis, Namyst —
// CAC/IPDPS 2008): the PIOMan event-driven communication engine of the PM2
// software suite, together with the NewMadeleine communication library and
// the Marcel two-level thread scheduler it builds on, all running over a
// simulated Myrinet/MX cluster fabric.
//
// The package exposes the downstream-facing API: build a Cluster (a set of
// simulated multicore nodes), spawn threads on its nodes, and communicate
// with MPI-flavored asynchronous primitives whose progress is driven by
// idle cores exactly as the paper describes.
//
//	cluster := pioman.NewCluster(2)
//	defer cluster.Close()
//	cluster.Run(func(p *pioman.Proc) {
//	    if p.Rank() == 0 {
//	        req := p.Isend(1, 1, data)
//	        p.Compute(20 * time.Microsecond) // overlapped with the copy
//	        p.WaitSend(req)
//	    } else {
//	        buf := make([]byte, len(data))
//	        p.Recv(0, 1, buf)
//	    }
//	})
package pioman

import (
	"time"

	"pioman/internal/core"
	"pioman/internal/mpi"
	"pioman/internal/nic"
	"pioman/internal/topo"
)

// Re-exported types: the working vocabulary of the public API.
type (
	// Cluster is a running simulated cluster.
	Cluster struct{ w *mpi.World }
	// Node is one cluster node (an MPI-process analog).
	Node = mpi.Node
	// Proc is a thread handle bound to a node; all communication and
	// computation happens through it.
	Proc = mpi.Proc
	// SendRequest is an in-flight asynchronous send.
	SendRequest = core.SendReq
	// RecvRequest is an in-flight asynchronous receive.
	RecvRequest = core.RecvReq
)

// AnySource matches receives from any sender.
const AnySource = core.AnySource

// options collects cluster construction parameters.
type options struct {
	cfg mpi.Config
}

// Option customizes NewCluster.
type Option func(*options)

// WithSequentialBaseline builds the cluster with the original
// (non-multithreaded) engine: no offloading, no background progression.
// Use it to compare against the PIOMan-enabled default.
func WithSequentialBaseline() Option {
	return func(o *options) {
		o.cfg.Mode = core.Sequential
		o.cfg.OffloadEager = false
		o.cfg.EnableBlocking = false
	}
}

// WithMachine sets each node's topology (default: dual quad-core Xeon).
func WithMachine(sockets, coresPerSocket int) Option {
	return func(o *options) {
		o.cfg.Machine = topo.Machine{Sockets: sockets, CoresPerSocket: coresPerSocket}
	}
}

// WithStrategy selects the optimizer strategy: "fifo" (default),
// "aggreg" (small-message aggregation) or "multirail".
func WithStrategy(name string) Option {
	return func(o *options) { o.cfg.Strategy = name }
}

// WithExtraRail adds a second inter-node rail (used with "multirail").
// kind is "tcp" for the TCP/10GbE preset.
func WithExtraRail(kind string) Option {
	return func(o *options) {
		switch kind {
		case "tcp":
			o.cfg.ExtraRails = append(o.cfg.ExtraRails, nic.TCPParams())
		default:
			panic("pioman: unknown rail kind " + kind)
		}
	}
}

// WithTrace attaches a per-node flight recorder of the given capacity;
// retrieve it via Cluster.Node(rank).Trace.
func WithTrace(capacity int) Option {
	return func(o *options) { o.cfg.TraceCapacity = capacity }
}

// WithAdaptiveOffload enables the paper's future-work strategy (§5): a
// send defers its submission only when an idle core exists to execute it,
// and submits inline otherwise.
func WithAdaptiveOffload() Option {
	return func(o *options) { o.cfg.AdaptiveOffload = true }
}

// WithoutBlockingFallback disables the blocking-syscall watcher used when
// every core is busy.
func WithoutBlockingFallback() Option {
	return func(o *options) { o.cfg.EnableBlocking = false }
}

// WithTimerPeriod enables the scheduler timer trigger at the given period.
func WithTimerPeriod(d time.Duration) Option {
	return func(o *options) { o.cfg.TimerPeriod = d }
}

// NewCluster starts a simulated cluster of n nodes with the PIOMan-enabled
// multithreaded engine (the paper's configuration: MX-like inter-node rail
// plus an intra-node shared-memory rail).
func NewCluster(n int, opts ...Option) *Cluster {
	o := &options{cfg: mpi.DefaultMultithreaded(n)}
	for _, opt := range opts {
		opt(o)
	}
	o.cfg.Nodes = n
	return &Cluster{w: mpi.NewWorld(o.cfg)}
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return c.w.Size() }

// Node returns the node with the given rank.
func (c *Cluster) Node(rank int) *Node { return c.w.Node(rank) }

// Run spawns fn as one thread on every node and waits for all of them.
func (c *Cluster) Run(fn func(*Proc)) { c.w.RunAll(fn) }

// Multithreaded reports whether the cluster runs the PIOMan-enabled engine.
func (c *Cluster) Multithreaded() bool { return c.w.Mode() == core.Multithreaded }

// Close shuts the cluster down; all spawned threads must have finished.
func (c *Cluster) Close() { c.w.Close() }
