package pioman_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"pioman"
)

func TestClusterLifecycle(t *testing.T) {
	c := pioman.NewCluster(3)
	defer c.Close()
	if c.Size() != 3 {
		t.Fatalf("Size = %d", c.Size())
	}
	if !c.Multithreaded() {
		t.Fatal("default cluster should be multithreaded")
	}
	for r := 0; r < 3; r++ {
		if c.Node(r).Rank() != r {
			t.Fatalf("Node(%d).Rank() = %d", r, c.Node(r).Rank())
		}
	}
}

func TestSequentialBaselineOption(t *testing.T) {
	c := pioman.NewCluster(2, pioman.WithSequentialBaseline())
	defer c.Close()
	if c.Multithreaded() {
		t.Fatal("baseline cluster reports multithreaded")
	}
	c.Run(func(p *pioman.Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, []byte("seq"))
		} else {
			buf := make([]byte, 8)
			n, _ := p.Recv(0, 1, buf)
			if string(buf[:n]) != "seq" {
				t.Errorf("got %q", buf[:n])
			}
		}
	})
}

func TestMachineOption(t *testing.T) {
	c := pioman.NewCluster(2, pioman.WithMachine(1, 2))
	defer c.Close()
	if got := c.Node(0).Sch.NumCores(); got != 2 {
		t.Fatalf("cores = %d, want 2", got)
	}
}

func TestRoundtripOverPublicAPI(t *testing.T) {
	c := pioman.NewCluster(2)
	defer c.Close()
	const size = 100 << 10 // rendezvous path
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 3)
	}
	c.Run(func(p *pioman.Proc) {
		if p.Rank() == 0 {
			req := p.Isend(1, 7, data)
			p.Compute(20 * time.Microsecond)
			p.WaitSend(req)
		} else {
			buf := make([]byte, size)
			n, from := p.Recv(0, 7, buf)
			if n != size || from != 0 || !bytes.Equal(buf, data) {
				t.Errorf("recv n=%d from=%d intact=%v", n, from, bytes.Equal(buf, data))
			}
		}
	})
}

func TestAnySourceConstant(t *testing.T) {
	c := pioman.NewCluster(2)
	defer c.Close()
	c.Run(func(p *pioman.Proc) {
		if p.Rank() == 1 {
			p.Send(0, 3, []byte{9})
		} else {
			var b [1]byte
			_, from := p.Recv(pioman.AnySource, 3, b[:])
			if from != 1 || b[0] != 9 {
				t.Errorf("from=%d b=%d", from, b[0])
			}
		}
	})
}

func TestCollectivesOverPublicAPI(t *testing.T) {
	c := pioman.NewCluster(4)
	defer c.Close()
	var mu sync.Mutex
	sums := map[int]float64{}
	c.Run(func(p *pioman.Proc) {
		p.Barrier()
		got := p.AllReduceSum(float64(p.Rank() + 1))
		mu.Lock()
		sums[p.Rank()] = got
		mu.Unlock()
	})
	for r, s := range sums {
		if s != 10 {
			t.Errorf("rank %d sum = %v, want 10", r, s)
		}
	}
}

func TestTraceOption(t *testing.T) {
	c := pioman.NewCluster(2, pioman.WithTrace(256))
	defer c.Close()
	c.Run(func(p *pioman.Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, []byte("traced"))
		} else {
			buf := make([]byte, 8)
			p.Recv(0, 1, buf)
		}
	})
	if c.Node(0).Trace.Len() == 0 {
		t.Fatal("no events recorded on sender")
	}
}

func TestStrategyAndExtraRailOptions(t *testing.T) {
	c := pioman.NewCluster(2,
		pioman.WithStrategy("multirail"),
		pioman.WithExtraRail("tcp"),
	)
	defer c.Close()
	const size = 256 << 10
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 7)
	}
	c.Run(func(p *pioman.Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, data)
		} else {
			buf := make([]byte, size)
			n, _ := p.Recv(0, 1, buf)
			if n != size || !bytes.Equal(buf, data) {
				t.Error("multirail transfer corrupted")
			}
		}
	})
}

func TestUnknownRailKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pioman.NewCluster(2, pioman.WithExtraRail("carrier-pigeon"))
}

func TestWithoutBlockingFallback(t *testing.T) {
	c := pioman.NewCluster(2, pioman.WithoutBlockingFallback(), pioman.WithTimerPeriod(time.Millisecond))
	defer c.Close()
	c.Run(func(p *pioman.Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, []byte("x"))
		} else {
			var b [1]byte
			p.Recv(0, 1, b[:])
		}
	})
}

func TestManyClustersSequentially(t *testing.T) {
	// Worlds must not leak goroutines that break subsequent worlds.
	for i := 0; i < 5; i++ {
		c := pioman.NewCluster(2, pioman.WithMachine(1, 2))
		c.Run(func(p *pioman.Proc) {
			if p.Rank() == 0 {
				p.Send(1, 1, []byte{byte(i)})
			} else {
				var b [1]byte
				p.Recv(0, 1, b[:])
			}
		})
		c.Close()
	}
}
