// Quickstart: a two-node cluster, one asynchronous exchange, and proof
// that the copy was offloaded to an idle core.
package main

import (
	"fmt"
	"time"

	"pioman"
)

func main() {
	// A simulated cluster: two dual quad-core Xeon nodes linked by an
	// MX-style 10G fabric, running the PIOMan-enabled engine.
	cluster := pioman.NewCluster(2)
	defer cluster.Close()

	const size = 16 << 10
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}

	// One warm-up exchange settles allocators and the Go scheduler so the
	// timings below reflect the steady state.
	cluster.Run(func(p *pioman.Proc) {
		if p.Rank() == 0 {
			p.Send(1, 9, data)
		} else {
			p.Recv(0, 9, make([]byte, size))
		}
	})

	cluster.Run(func(p *pioman.Proc) {
		switch p.Rank() {
		case 0:
			// The asynchronous send returns immediately: it only
			// registers the request. An idle core performs the copy and
			// the network submission while we compute.
			start := time.Now()
			req := p.Isend(1, 1, data)
			fmt.Printf("rank 0: Isend(%d bytes) returned in %v\n", size, time.Since(start))

			p.Compute(50 * time.Microsecond) // overlapped with the transfer

			p.WaitSend(req)
			fmt.Printf("rank 0: send complete after %v\n", time.Since(start))
		case 1:
			buf := make([]byte, size)
			n, from := p.Recv(0, 1, buf)
			ok := true
			for i := 0; i < n; i++ {
				if buf[i] != byte(i) {
					ok = false
					break
				}
			}
			fmt.Printf("rank 1: received %d bytes from rank %d, intact=%v\n", n, from, ok)
		}
	})

	st := cluster.Node(0).Eng.Stats()
	fmt.Printf("rank 0 engine: %d sends, %d submissions offloaded to idle cores\n",
		st.SendsPosted, st.OffloadSubmits)
}
