// Convolution: the paper's Table 1 meta-application (§4.3, Figs. 7-8) as a
// standalone program. A 4×4 grid of threads is distributed over two nodes
// (left columns on node 0, right columns on node 1). Every iteration each
// thread computes its frontier, sends it asynchronously to its 4-neighbors
// (intra-node via shared memory, inter-node via the MX rail), computes its
// interior, then waits for its neighbors' frontiers.
package main

import (
	"flag"
	"fmt"
	"time"

	"pioman/internal/exp"
	"pioman/internal/mpi"
	"pioman/internal/stats"
)

func main() {
	threads := flag.Int("threads", 16, "total threads across the 2 nodes (4 or 16 in the paper)")
	msg := flag.Int("msg", 16<<10, "frontier message size in bytes (below the 32K rendezvous threshold)")
	iters := flag.Int("iters", 60, "measured iterations")
	flag.Parse()

	cfg := exp.DefaultTable1(*threads)
	cfg.MsgSize = *msg
	cfg.Iters = *iters

	fmt.Printf("convolution meta-application: %d threads over 2 nodes, %d-byte frontiers\n\n", *threads, *msg)

	seq := exp.RunConvolution(mpi.DefaultSequential(2), cfg)
	fmt.Printf("  no offloading (original engine):   %8.0f µs/iteration\n", stats.US(seq))

	off := exp.RunConvolution(mpi.DefaultMultithreaded(2), cfg)
	fmt.Printf("  offloading (PIOMan engine):        %8.0f µs/iteration\n", stats.US(off))

	if seq > 0 {
		fmt.Printf("  speedup: %.1f%%\n", 100*(1-float64(off)/float64(seq)))
	}
	_ = time.Microsecond
}
