// Pipeline: a four-stage processing pipeline across four nodes that
// showcases the optimizer strategies. Each stage receives records from the
// previous node, "processes" them, and forwards them in a burst of small
// messages — the pattern the data-aggregation strategy of NewMadeleine [2]
// was built for. The program compares the FIFO and aggregation strategies
// end to end.
package main

import (
	"fmt"
	"time"

	"pioman"
	"pioman/internal/stats"
)

const (
	stages     = 4
	records    = 24  // records per batch, each an individual small message
	recordSize = 256 // bytes
	batches    = 50
	workPerRec = 500 * time.Nanosecond
)

func runPipeline(strategy string) (time.Duration, uint64, uint64) {
	cluster := pioman.NewCluster(stages, pioman.WithStrategy(strategy))
	defer cluster.Close()

	var total time.Duration
	cluster.Run(func(p *pioman.Proc) {
		rank := p.Rank()
		bufs := make([][]byte, records)
		outs := make([][]byte, records)
		for i := range bufs {
			bufs[i] = make([]byte, recordSize)
			outs[i] = make([]byte, recordSize)
		}
		p.Barrier()
		start := time.Now()
		for b := 0; b < batches; b++ {
			if rank == 0 {
				// Source: emit the batch as a burst of small messages —
				// the aggregation strategy's favorite food.
				reqs := make([]*pioman.SendRequest, records)
				for rec := range reqs {
					reqs[rec] = p.Isend(1, 1, outs[rec])
				}
				for _, s := range reqs {
					p.WaitSend(s)
				}
				continue
			}
			// Stage: receive the whole batch, process it, forward it as
			// a burst.
			recvs := make([]*pioman.RecvRequest, records)
			for rec := range recvs {
				recvs[rec] = p.Irecv(rank-1, 1, bufs[rec])
			}
			for rec, r := range recvs {
				p.WaitRecv(r)
				p.Compute(workPerRec)
				copy(outs[rec], bufs[rec])
			}
			if rank < stages-1 {
				reqs := make([]*pioman.SendRequest, records)
				for rec := range reqs {
					reqs[rec] = p.Isend(rank+1, 1, outs[rec])
				}
				for _, s := range reqs {
					p.WaitSend(s)
				}
			}
		}
		if rank == stages-1 {
			total = time.Since(start)
		}
	})
	var sent, aggregated uint64
	for rank := 0; rank < stages; rank++ {
		st := cluster.Node(rank).Eng.Stats()
		sent += st.EagerSubmits
		aggregated += st.Aggregated
	}
	return total, sent, aggregated
}

func main() {
	fmt.Printf("pipeline: %d stages, %d batches x %d records x %dB\n\n", stages, batches, records, recordSize)
	for _, strat := range []string{"fifo", "aggreg"} {
		d, sent, aggregated := runPipeline(strat)
		fmt.Printf("  strategy=%-7s total=%8.1fµs  (%.2fµs/record)  messages=%d aggregated=%d\n",
			strat, stats.US(d), stats.US(d)/float64(batches*records), sent, aggregated)
	}
	fmt.Println("\nAggregation coalesces bursts of small messages into fewer wire packets,")
	fmt.Println("amortizing per-packet submission overhead and wire gaps.")
}
