// Overlap: the paper's Fig. 4 micro-benchmark as a runnable program. Both
// ranks post an asynchronous exchange, compute, and wait; the program
// reports how much of the communication was hidden behind the computation
// for the baseline engine and for the PIOMan-enabled one.
package main

import (
	"fmt"
	"time"

	"pioman"
	"pioman/internal/stats"
)

const (
	size    = 16 << 10
	compute = 20 * time.Microsecond
	warmup  = 20
	iters   = 200
)

func measure(cluster *pioman.Cluster, comp time.Duration) time.Duration {
	var result time.Duration
	cluster.Run(func(p *pioman.Proc) {
		peer := 1 - p.Rank()
		data := make([]byte, size)
		buf := make([]byte, size)
		p.Barrier()
		sample := stats.NewSample(iters)
		for it := 0; it < warmup+iters; it++ {
			r := p.Irecv(peer, 1, buf)
			start := time.Now()
			s := p.Isend(peer, 1, data)
			p.Compute(comp)
			p.WaitSend(s)
			p.WaitRecv(r)
			if it >= warmup && p.Rank() == 0 {
				sample.Add(time.Since(start))
			}
		}
		if p.Rank() == 0 {
			result = sample.TrimmedMean(0.1)
		}
	})
	return result
}

func run(name string, opts ...pioman.Option) {
	cluster := pioman.NewCluster(2, opts...)
	defer cluster.Close()
	comm := measure(cluster, 0)       // pure communication
	both := measure(cluster, compute) // communication + computation
	hidden := float64(comm+compute-both) / float64(comm)
	if hidden < 0 {
		hidden = 0
	}
	if hidden > 1 {
		hidden = 1
	}
	fmt.Printf("%-28s comm=%6.1fµs  comm+comp=%6.1fµs  overlap=%4.0f%%\n",
		name, stats.US(comm), stats.US(both), hidden*100)
}

func main() {
	fmt.Printf("Fig. 4 pattern: isend(%d bytes) + compute(%v) + swait, exchange between 2 nodes\n\n", size, compute)
	run("sequential baseline:", pioman.WithSequentialBaseline())
	run("multithreaded (PIOMan):")
	fmt.Println("\nThe baseline pays sum(comm, comp); the multithreaded engine pays ~max(comm, comp).")
}
