// Benchmarks regenerating every table and figure of the paper's evaluation
// (§4), one benchmark family per artifact:
//
//	BenchmarkFig5   — Figure 5, small-message submission offloading
//	BenchmarkFig6   — Figure 6, rendezvous handshake progression
//	BenchmarkTable1 — Table 1, the convolution meta-application
//	BenchmarkAblation* — the design-choice ablations from DESIGN.md
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Each sub-benchmark reports µs per benchmark iteration (one Fig. 4
// exchange or one application iteration), directly comparable with the
// paper's µs numbers; cmd/nmbench prints the same data as tables.
package pioman_test

import (
	"fmt"
	"testing"
	"time"

	"pioman/internal/core"
	"pioman/internal/exp"
	"pioman/internal/mpi"
)

// fig4Configs are the engine configurations compared in Figs. 5 and 6.
func fig4Configs() []struct {
	name string
	cfg  mpi.Config
	comp time.Duration
} {
	return []struct {
		name string
		cfg  mpi.Config
		comp time.Duration
	}{
		{"reference", mpi.DefaultSequential(2), 0},
		{"no-offload", mpi.DefaultSequential(2), -1}, // comp filled per figure
		{"offload", mpi.DefaultMultithreaded(2), -1},
	}
}

// benchExchange measures b.N Fig. 4 iterations on a fresh world.
func benchExchange(b *testing.B, cfg mpi.Config, size int, comp time.Duration) {
	b.Helper()
	w := mpi.NewWorld(cfg)
	defer w.Close()
	exp.RunExchangeN(w, size, comp, 20) // warm the engine and the links
	b.ResetTimer()
	exp.RunExchangeN(w, size, comp, b.N)
}

// BenchmarkFig5 regenerates Figure 5 (§4.1): eager messages with 20 µs of
// computation per iteration.
func BenchmarkFig5(b *testing.B) {
	const comp = 20 * time.Microsecond
	for _, se := range fig4Configs() {
		c := se.comp
		if c < 0 {
			c = comp
		}
		for _, size := range exp.Fig5Sizes() {
			b.Run(fmt.Sprintf("%s/size=%d", se.name, size), func(b *testing.B) {
				benchExchange(b, se.cfg, size, c)
			})
		}
	}
}

// BenchmarkFig6 regenerates Figure 6 (§4.2): the rendezvous sweep with
// 100 µs of computation per iteration.
func BenchmarkFig6(b *testing.B) {
	const comp = 100 * time.Microsecond
	for _, se := range fig4Configs() {
		c := se.comp
		if c < 0 {
			c = comp
		}
		for _, size := range exp.Fig6Sizes() {
			b.Run(fmt.Sprintf("%s/size=%d", se.name, size), func(b *testing.B) {
				benchExchange(b, se.cfg, size, c)
			})
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (§4.3): the convolution
// meta-application at 4 and 16 threads, with and without offloading. Each
// benchmark iteration is one full run of the measured loop; the reported
// per-iteration metric is the mean application iteration time.
func BenchmarkTable1(b *testing.B) {
	for _, threads := range []int{4, 16} {
		for _, mode := range []struct {
			name string
			cfg  mpi.Config
		}{
			{"no-offload", mpi.DefaultSequential(2)},
			{"offload", mpi.DefaultMultithreaded(2)},
		} {
			b.Run(fmt.Sprintf("threads=%d/%s", threads, mode.name), func(b *testing.B) {
				cfg := exp.DefaultTable1(threads)
				cfg.Warmup = 5
				cfg.Iters = 20
				var mean time.Duration
				for i := 0; i < b.N; i++ {
					mean = exp.RunConvolution(mode.cfg, cfg)
				}
				b.ReportMetric(float64(mean.Microseconds()), "µs/app-iter")
			})
		}
	}
}

// BenchmarkAblationOffload isolates the Isend return-time claim of §2.2.
func BenchmarkAblationOffload(b *testing.B) {
	for _, mode := range []struct {
		name string
		cfg  mpi.Config
	}{
		{"sequential", mpi.DefaultSequential(2)},
		{"mt-inline", func() mpi.Config {
			c := mpi.DefaultMultithreaded(2)
			c.OffloadEager = false
			return c
		}()},
		{"mt-offload", mpi.DefaultMultithreaded(2)},
	} {
		b.Run(mode.name, func(b *testing.B) {
			benchExchange(b, mode.cfg, 16<<10, 20*time.Microsecond)
		})
	}
}

// BenchmarkAblationStrategy compares the optimizer strategies on a burst
// of small same-destination messages.
func BenchmarkAblationStrategy(b *testing.B) {
	for _, strat := range []string{"fifo", "aggreg"} {
		b.Run(strat, func(b *testing.B) {
			cfg := mpi.DefaultMultithreaded(2)
			cfg.Strategy = strat
			w := mpi.NewWorld(cfg)
			defer w.Close()
			const burst = 16
			const sz = 512
			run := func(n int) {
				w.RunAll(func(p *mpi.Proc) {
					p.Barrier()
					if p.Rank() == 0 {
						data := make([]byte, sz)
						for it := 0; it < n; it++ {
							reqs := make([]*core.SendReq, burst)
							for m := range reqs {
								reqs[m] = p.Isend(1, 9, data)
							}
							for _, s := range reqs {
								p.WaitSend(s)
							}
							var ack [1]byte
							p.Recv(1, 10, ack[:])
						}
						return
					}
					buf := make([]byte, sz)
					for it := 0; it < n; it++ {
						for m := 0; m < burst; m++ {
							p.Recv(0, 9, buf)
						}
						p.Send(0, 10, []byte{1})
					}
				})
			}
			run(5)
			b.ResetTimer()
			run(b.N)
		})
	}
}

// BenchmarkAblationBlocking measures a rendezvous exchange while every
// core computes, with and without the blocking-call fallback.
func BenchmarkAblationBlocking(b *testing.B) {
	for _, blocking := range []bool{false, true} {
		name := "fallback=off"
		if blocking {
			name = "fallback=on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := mpi.DefaultMultithreaded(2)
			cfg.EnableBlocking = blocking
			w := mpi.NewWorld(cfg)
			defer w.Close()
			exp.RunExchangeN(w, 64<<10, 300*time.Microsecond, 10)
			b.ResetTimer()
			exp.RunExchangeN(w, 64<<10, 300*time.Microsecond, b.N)
		})
	}
}

// BenchmarkMsgRate64B measures back-to-back 64-byte message throughput
// through the full engine — msgs/sec, not RTT: rank 0 keeps a window of
// non-blocking sends in flight while rank 1 receives the stream, so
// per-event engine overhead (submission, matching, and the batched
// receive drain) is what bounds the rate, not the round-trip latency
// the pingpong benchmarks report. The b.N messages of one iteration
// all flow before the closing barrier, and the reported custom metric
// is the achieved message rate.
func BenchmarkMsgRate64B(b *testing.B) {
	w := mpi.NewWorld(mpi.DefaultMultithreaded(2))
	defer w.Close()
	const window = 32
	run := func(n int) {
		w.RunAll(func(p *mpi.Proc) {
			p.Barrier()
			if p.Rank() == 0 {
				data := make([]byte, 64)
				reqs := make([]*core.SendReq, 0, window)
				for it := 0; it < n; it++ {
					reqs = append(reqs, p.Isend(1, 1, data))
					if len(reqs) == window {
						for _, r := range reqs {
							p.WaitSend(r)
							r.Release()
						}
						reqs = reqs[:0]
					}
				}
				for _, r := range reqs {
					p.WaitSend(r)
					r.Release()
				}
			} else {
				buf := make([]byte, 64)
				for it := 0; it < n; it++ {
					p.Recv(0, 1, buf)
				}
			}
			p.Barrier()
		})
	}
	run(200)
	b.ResetTimer()
	start := time.Now()
	run(b.N)
	if el := time.Since(start); el > 0 {
		b.ReportMetric(float64(b.N)/el.Seconds(), "msgs/s")
	}
}

// BenchmarkPingpong is the classic latency benchmark over the simulated
// MX rail, multithreaded engine.
func BenchmarkPingpong(b *testing.B) {
	for _, size := range []int{8, 1024, 32 << 10, 512 << 10} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			w := mpi.NewWorld(mpi.DefaultMultithreaded(2))
			defer w.Close()
			run := func(n int) {
				w.RunAll(func(p *mpi.Proc) {
					data := make([]byte, size)
					buf := make([]byte, size)
					p.Barrier()
					for it := 0; it < n; it++ {
						if p.Rank() == 0 {
							p.Send(1, 1, data)
							p.Recv(1, 1, buf)
						} else {
							p.Recv(0, 1, buf)
							p.Send(0, 1, data)
						}
					}
				})
			}
			run(20)
			b.ResetTimer()
			run(b.N)
		})
	}
}
